/**
 * @file
 * Cycle-level network-on-chip model.
 *
 * Routers move whole messages between per-(input port, channel) buffers
 * at message granularity while charging exact wormhole timing: a hop
 * advances the head one router per cycle and occupies the traversed
 * link for the message's flit count ("its flits are always routed back
 * to back", Sec. III-E). Messages on the same (output port, channel)
 * never interleave; different output ports of a router route
 * simultaneously; input ports contending for an output port are
 * arbitrated round-robin — all per Sec. III-E.
 *
 * Deadlock freedom: dimension-ordered routing on the mesh; on torus
 * rings a message entering a ring (injection or dimension turn) must
 * leave a free buffer slot behind it — the paper's "local bubble
 * routing" (Sec. III-F). Endpoint backpressure is modeled by letting
 * the TSU refuse delivery when the target input queue is full.
 *
 * Simplifications vs RTL (documented in DESIGN.md): buffers are counted
 * in message slots rather than a shared per-direction flit pool, and a
 * link serializes whole messages across channels instead of
 * interleaving virtual-channel flits. Both conserve link bandwidth and
 * buffer capacity exactly.
 */

#ifndef DALOREX_NOC_NETWORK_HH
#define DALOREX_NOC_NETWORK_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "noc/message.hh"
#include "noc/topology.hh"

namespace dalorex
{

/** Static configuration of the NoC. */
struct NocConfig
{
    NocTopology topology = NocTopology::torus;
    std::uint32_t width = 16;
    std::uint32_t height = 16;
    std::uint32_t rucheFactor = 0; //!< used when topology == torusRuche
    std::uint32_t numChannels = 2;
    /** Flits per message on each channel (known statically). */
    std::array<std::uint8_t, maxChannels> msgWords = {3, 2, 0, 0};
    /** Capacity of each (input port, channel) buffer, in messages. */
    std::uint32_t bufferSlots = 4;
};

/** Aggregate NoC activity counters (feed the energy model). */
struct NocStats
{
    std::uint64_t messagesInjected = 0;
    std::uint64_t messagesDelivered = 0;
    std::uint64_t flitHops = 0;       //!< flits x links traversed
    std::uint64_t flitWireTiles = 0;  //!< flit-hops x wire tile-lengths
    std::uint64_t routerPassages = 0; //!< flits crossing a router
    std::uint64_t deliveryStalls = 0; //!< endpoint-backpressure retries
};

/** Outcome of an injection attempt. */
enum class InjectResult
{
    ok,         //!< message entered the local input buffer
    portBusy,   //!< still serializing a previous message (transient)
    bufferFull, //!< local buffer full; wait for a pop (event)
};

/**
 * The NoC: a grid of routers stepped one cycle at a time.
 *
 * Injection: `tryInject` places a message into the source router's
 * local input buffer (serialized at one flit per cycle per tile).
 * Delivery: when a message reaches its destination's local output, the
 * engine-supplied callback is offered the message and may refuse it
 * (input queue full), leaving it buffered — backpressure.
 */
class Network
{
  public:
    /** Returns true if the tile accepted the message. */
    using DeliverFn = std::function<bool(const Message&)>;
    /** Notified when a full local input buffer frees a slot. */
    using InjectSpaceFn = std::function<void(TileId, ChannelId)>;

    Network(const NocConfig& config, DeliverFn deliver,
            InjectSpaceFn on_inject_space = nullptr);

    /**
     * Try to move a message from tile `src`'s channel queue into the
     * network at cycle `now`.
     */
    InjectResult tryInject(const Message& msg, TileId src, Cycle now);

    /** Advance every router by one cycle. */
    void step(Cycle now);

    /** True when no message is buffered anywhere in the network. */
    bool quiescent() const { return inFlight_ == 0; }

    std::uint64_t inFlight() const { return inFlight_; }
    const NocStats& stats() const { return stats_; }
    const Topology& topology() const { return topo_; }
    const NocConfig& config() const { return config_; }

    /** Per-router cycles with at least one flit in motion (Fig. 10). */
    const std::vector<Cycle>&
    routerActiveCycles() const
    {
        return routerActive_;
    }

    /**
     * Re-arm any sleeping heads at `router`. The engine must call this
     * whenever it frees space in one of the tile's input queues so a
     * delivery blocked on a full IQ retries.
     */
    void
    wakeRouter(TileId router)
    {
        routers_[router].blocked = 0;
    }

    /**
     * True when a tryInject on this channel is known to fail because
     * the local input buffer is full (engine fast-path check).
     */
    bool
    injectBlocked(TileId router, ChannelId channel) const
    {
        return (routers_[router].injectBlocked >> channel) & 1;
    }

    /** Cycle at which the tile's injection port frees up. */
    Cycle
    injectFreeAt(TileId router) const
    {
        return routers_[router].injectFreeAt;
    }

  private:
    /**
     * A buffered message plus the cycle its head arrived here and its
     * pre-routed exit. The output port is fixed by dimension-ordered
     * routing the moment the message enters a router, so it is
     * computed once per hop (at push) instead of on every retry.
     */
    struct InFlight
    {
        Message msg;
        Cycle arrival;
        Port outPort;
        std::uint8_t needSlots; //!< bubble rule: 2 on ring entry
    };

    /** Fixed-capacity ring buffer of in-flight messages. */
    struct Fifo
    {
        std::vector<InFlight> slots;
        std::uint32_t head = 0;
        std::uint32_t count = 0;

        bool empty() const { return count == 0; }
        std::uint32_t
        free() const
        {
            return static_cast<std::uint32_t>(slots.size()) - count;
        }
        InFlight& front() { return slots[head]; }
        void
        pop()
        {
            head = (head + 1) % slots.size();
            --count;
        }
        void
        push(const InFlight& entry)
        {
            slots[(head + count) % slots.size()] = entry;
            ++count;
        }
    };

    struct Router
    {
        /** buffers[port][channel]; portLocal holds injected traffic. */
        std::array<std::array<Fifo, maxChannels>, numPorts> buffers;
        /** Link occupancy per output port (wormhole serialization). */
        std::array<Cycle, numPorts> linkFreeAt{};
        /** Downstream router id per output port (precomputed). */
        std::array<TileId, numPorts> neighborId{};
        /** Injection serialization (TSU -> router, 1 flit/cycle). */
        Cycle injectFreeAt = 0;
        /** Non-empty (port, channel) pairs, bit port*channels+chan. */
        std::uint64_t occupancy = 0;
        /**
         * Pairs whose head is asleep waiting for downstream buffer
         * space or input-queue space. A sleeping head is skipped by
         * step() until a pop on the blocking structure wakes this
         * router — turning the congestion retry storm into an
         * event-driven wait with identical timing (space can only
         * appear via a pop, which always wakes the sleeper in the
         * same cycle the space appears).
         */
        std::uint64_t blocked = 0;
        /**
         * Channels whose local input buffer rejected an injection
         * because it was full; cleared when that buffer pops. Lets the
         * engine skip hopeless injection retries.
         */
        std::uint8_t injectBlocked = 0;
    };

    void markActive(TileId router, Cycle now, unsigned len);
    bool tryMove(TileId router_id, Port in_port, ChannelId channel,
                 Cycle now);
    /** Fill the pre-routed fields of a message entering `router`. */
    void routeInto(TileId router, Port in_port, InFlight& entry) const;

    NocConfig config_;
    Topology topo_;
    DeliverFn deliver_;
    InjectSpaceFn onInjectSpace_;
    std::vector<Router> routers_;
    std::vector<Cycle> routerActive_;
    std::vector<Cycle> routerActiveUntil_;
    std::uint64_t inFlight_ = 0;
    NocStats stats_;
};

} // namespace dalorex

#endif // DALOREX_NOC_NETWORK_HH
