#include "common/journal.hh"

#include <cstdio>

#include "graph/graphfile.hh"
#include "serve/json.hh"

namespace dalorex
{
namespace journal
{

namespace
{

/** 16-digit zero-padded lowercase hex (the on-disk hash spelling). */
std::string
hex16(std::uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return std::string(buf, 16);
}

bool
parseHex16(const std::string& text, std::uint64_t& out)
{
    if (text.size() != 16)
        return false;
    out = 0;
    for (char c : text) {
        out <<= 4;
        if (c >= '0' && c <= '9')
            out |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            out |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    return true;
}

/** Checksum member appended to every line: hash of the line's bytes
 *  up to (excluding) the `,"checksum"` suffix plus a closing brace —
 *  i.e. of the record as it would render without the checksum. */
constexpr const char* checksumKey = ",\"checksum\":\"";

std::string
seal(std::string core)
{
    // `core` is the full object without the checksum member.
    const std::uint64_t sum = hashBytes(core.data(), core.size());
    core.pop_back(); // drop the closing '}'
    core += checksumKey;
    core += hex16(sum);
    core += "\"}";
    return core;
}

/** Split a sealed line back into core + checksum; false if torn. */
bool
unseal(const std::string& line, std::string& core, std::uint64_t& sum)
{
    const std::size_t at = line.rfind(checksumKey);
    if (at == std::string::npos)
        return false;
    const std::size_t tail = at + std::string(checksumKey).size();
    if (line.size() != tail + 16 + 2 || line.back() != '}' ||
        line[line.size() - 2] != '"')
        return false;
    if (!parseHex16(line.substr(tail, 16), sum))
        return false;
    core = line.substr(0, at) + "}";
    return true;
}

} // namespace

const char*
toString(RowStatus status)
{
    switch (status) {
    case RowStatus::failed: return "failed";
    case RowStatus::quarantined: return "quarantined";
    case RowStatus::skipped: return "skipped";
    case RowStatus::ok: break;
    }
    return "ok";
}

bool
parseRowStatus(std::string_view text, RowStatus& out)
{
    if (text == "ok")
        out = RowStatus::ok;
    else if (text == "failed")
        out = RowStatus::failed;
    else if (text == "quarantined")
        out = RowStatus::quarantined;
    else if (text == "skipped")
        out = RowStatus::skipped;
    else
        return false;
    return true;
}

std::string
renderHeader(std::uint64_t planHash, std::uint64_t points)
{
    std::string core = "{\"type\":\"journal\",\"version\":1,\"plan\":\"";
    core += hex16(planHash);
    core += "\",\"points\":";
    core += std::to_string(points);
    core += "}";
    return seal(std::move(core));
}

std::string
renderRecord(const Record& record)
{
    std::string core = "{\"type\":\"row\",\"row\":";
    core += std::to_string(record.row);
    core += ",\"point\":\"";
    core += hex16(record.pointHash);
    core += "\",\"status\":\"";
    core += toString(record.status);
    core += "\",\"attempts\":";
    core += std::to_string(record.attempts);
    if (!record.error.empty()) {
        core += ",\"error\":";
        core += serve::jsonQuote(record.error);
    }
    if (record.status == RowStatus::ok) {
        core += ",\"report\":";
        core += record.payload; // verbatim renderJson bytes
    }
    core += "}";
    return seal(std::move(core));
}

bool
parseLine(const std::string& line, ParsedLine& out, std::string& err)
{
    std::string core;
    std::uint64_t sum = 0;
    if (!unseal(line, core, sum)) {
        err = "torn record (no checksum)";
        return false;
    }
    if (hashBytes(core.data(), core.size()) != sum) {
        err = "checksum mismatch";
        return false;
    }
    const serve::JsonParseResult parsed = serve::parseJson(core);
    if (!parsed.ok) {
        err = parsed.error;
        return false;
    }
    const serve::JsonValue& value = parsed.value;
    const serve::JsonValue* type = value.find("type");
    if (type == nullptr || !type->isString()) {
        err = "record has no type";
        return false;
    }

    out = ParsedLine{};
    if (type->text == "journal") {
        out.isHeader = true;
        const serve::JsonValue* plan = value.find("plan");
        const serve::JsonValue* points = value.find("points");
        if (plan == nullptr || !plan->isString() ||
            !parseHex16(plan->text, out.planHash)) {
            err = "header has no plan hash";
            return false;
        }
        if (points == nullptr || !points->asU64(out.points)) {
            err = "header has no point count";
            return false;
        }
        return true;
    }
    if (type->text != "row") {
        err = "unknown record type \"" + type->text + "\"";
        return false;
    }

    Record& record = out.record;
    const serve::JsonValue* row = value.find("row");
    if (row == nullptr || !row->asU64(record.row)) {
        err = "row record has no row index";
        return false;
    }
    const serve::JsonValue* point = value.find("point");
    if (point == nullptr || !point->isString() ||
        !parseHex16(point->text, record.pointHash)) {
        err = "row record has no point hash";
        return false;
    }
    const serve::JsonValue* status = value.find("status");
    if (status == nullptr || !status->isString() ||
        !parseRowStatus(status->text, record.status)) {
        err = "row record has no status";
        return false;
    }
    std::uint64_t attempts = 1;
    const serve::JsonValue* tries = value.find("attempts");
    if (tries != nullptr && !tries->asU64(attempts)) {
        err = "row record has a bad attempt count";
        return false;
    }
    record.attempts = static_cast<std::uint32_t>(attempts);
    if (const serve::JsonValue* error = value.find("error");
        error != nullptr && error->isString())
        record.error = error->text;
    if (record.status == RowStatus::ok) {
        // Recover the report payload *verbatim* (not re-rendered):
        // the bytes between `"report":` and the core's closing brace.
        const std::size_t at = core.find(",\"report\":");
        if (at == std::string::npos) {
            err = "ok record has no report";
            return false;
        }
        const std::size_t from = at + std::string(",\"report\":").size();
        record.payload = core.substr(from, core.size() - 1 - from);
    }
    return true;
}

bool
Writer::open(const std::string& path, std::uint64_t planHash,
             std::uint64_t points, std::string& err)
{
    std::lock_guard<std::mutex> lock(mutex_);
    out_.open(path, std::ios::out | std::ios::app);
    if (!out_) {
        err = "cannot open journal " + path;
        return false;
    }
    out_ << renderHeader(planHash, points) << '\n' << std::flush;
    if (!out_) {
        err = "cannot write journal header to " + path;
        return false;
    }
    return true;
}

bool
Writer::append(const Record& record)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out_.is_open() || !out_)
        return false;
    out_ << renderRecord(record) << '\n' << std::flush;
    if (!out_)
        return false;
    ++written_;
    return true;
}

std::uint64_t
Writer::written() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return written_;
}

void
Writer::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (out_.is_open())
        out_.close();
}

Replay
replay(const std::string& path)
{
    Replay result;
    std::ifstream in(path);
    if (!in) {
        result.error = "cannot open journal " + path;
        return result;
    }
    bool sawHeader = false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ParsedLine parsed;
        std::string err;
        if (!parseLine(line, parsed, err)) {
            ++result.corrupt;
            continue;
        }
        if (parsed.isHeader) {
            if (!sawHeader) {
                sawHeader = true;
                result.planHash = parsed.planHash;
                result.points = parsed.points;
            } else if (parsed.planHash != result.planHash ||
                       parsed.points != result.points) {
                result.error = "journal headers disagree (mixed plans "
                               "in " + path + ")";
                return result;
            }
            continue;
        }
        result.records.push_back(std::move(parsed.record));
    }
    if (!sawHeader) {
        result.error = "journal " + path + " has no valid header";
        return result;
    }
    result.ok = true;
    return result;
}

} // namespace journal
} // namespace dalorex
