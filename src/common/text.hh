/**
 * @file
 * Tiny shared string helpers (previously copy-pasted per module).
 */

#ifndef DALOREX_COMMON_TEXT_HH
#define DALOREX_COMMON_TEXT_HH

#include <algorithm>
#include <cctype>
#include <string>

namespace dalorex
{

/** ASCII lower-casing for flag/name matching. */
inline std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

} // namespace dalorex

#endif // DALOREX_COMMON_TEXT_HH
