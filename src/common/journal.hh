/**
 * @file
 * The durable run journal: an append-only, per-record-checksummed
 * JSONL file recording the outcome of every sweep row (and, under
 * `dalorex serve --journal-dir`, every completed request per client).
 *
 * Each line is one self-contained JSON object whose last member is a
 * checksum over the preceding bytes of the line (graphfile's FNV-1a
 * via hashBytes), so a crash mid-append — the expected failure mode;
 * the writer is kill -9'd, not closed — leaves at most one torn
 * trailing line, which replay() detects and drops. A record of status
 * `ok` embeds the row's *verbatim* renderJson report bytes; resuming
 * replays them through serve::parseReportPayload, the same
 * reconstruction path `--via SOCKET` sweeps use, which is what makes
 * a resumed sweep's table/CSV/JSONL byte-identical to an
 * uninterrupted run.
 *
 * Rows are keyed by (row index, point hash): the point hash is a hash
 * of the row's canonical serialized scenario (deadline knobs
 * excluded), so a journal can never replay a record into a different
 * plan — the header additionally binds the whole file to a plan hash.
 */

#ifndef DALOREX_COMMON_JOURNAL_HH
#define DALOREX_COMMON_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dalorex
{
namespace journal
{

/** Terminal state of one journaled row. */
enum class RowStatus : std::uint8_t
{
    ok,          //!< ran and validated; `payload` holds the report
    failed,      //!< transient failure (retriable; re-run on resume)
    quarantined, //!< permanent failure (validation, bad scenario):
                 //!< resume replays the error instead of re-running
    skipped,     //!< interrupted/cancelled before completing
};

const char* toString(RowStatus status);
bool parseRowStatus(std::string_view text, RowStatus& out);

/** One journaled row outcome. */
struct Record
{
    std::uint64_t row = 0;       //!< expansion-order index
    std::uint64_t pointHash = 0; //!< hash of the canonical scenario
    RowStatus status = RowStatus::ok;
    std::uint32_t attempts = 1;  //!< runs performed incl. retries
    std::string error;           //!< non-ok: the row's one-line error
    std::string payload;         //!< ok: verbatim renderJson bytes
};

/** A parsed journal line: a header or a row record. */
struct ParsedLine
{
    bool isHeader = false;
    std::uint64_t planHash = 0;  //!< header only
    std::uint64_t points = 0;    //!< header only
    Record record;               //!< row only
};

/** Render the file-binding header line (no trailing newline). */
std::string renderHeader(std::uint64_t planHash, std::uint64_t points);
/** Render one row record line (no trailing newline). */
std::string renderRecord(const Record& record);
/** Parse + checksum-verify one line; false with `err` on any damage. */
bool parseLine(const std::string& line, ParsedLine& out,
               std::string& err);

/**
 * Thread-safe append-only journal writer. open() appends to `path`
 * (creating it) and writes a fresh header; append() serializes,
 * checksums and flushes one record — every record is on disk before
 * the row is considered journaled, so kill -9 never loses a
 * completed row, only at most the torn line being written.
 */
class Writer
{
  public:
    Writer() = default;

    bool open(const std::string& path, std::uint64_t planHash,
              std::uint64_t points, std::string& err);
    bool isOpen() const { return out_.is_open(); }
    /** Append one record; false once the stream has failed. */
    bool append(const Record& record);
    /** Row records appended through this writer. */
    std::uint64_t written() const;
    void close();

  private:
    mutable std::mutex mutex_;
    std::ofstream out_;
    std::uint64_t written_ = 0;
};

/** Everything recovered from one journal file. */
struct Replay
{
    bool ok = false;    //!< file opened and at least the header parsed
    std::string error;  //!< set when !ok
    std::uint64_t planHash = 0; //!< from the (first) header
    std::uint64_t points = 0;   //!< from the (first) header
    /** Valid row records in file order (duplicates kept; last wins). */
    std::vector<Record> records;
    std::uint64_t corrupt = 0; //!< damaged lines dropped (torn tail)
};

/**
 * Read back a journal. Checksum-damaged or torn lines are dropped and
 * counted, never fatal — a journal that was being appended when the
 * process died is the normal input. Repeated headers (a resumed run
 * appending into its own journal) must agree with the first.
 */
Replay replay(const std::string& path);

} // namespace journal
} // namespace dalorex

#endif // DALOREX_COMMON_JOURNAL_HH
