/**
 * @file
 * Console table and CSV emission for benchmark harnesses.
 *
 * Every figure-reproduction bench prints an aligned human-readable table
 * (the "rows/series the paper reports") and can mirror it to CSV for
 * plotting.
 */

#ifndef DALOREX_COMMON_TABLE_HH
#define DALOREX_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace dalorex
{

/** A simple aligned text table with an optional CSV mirror. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render aligned text (headers, rule, rows). */
    std::string toText() const;

    /** Render RFC-4180 CSV (quotes cells containing , " or newline). */
    std::string toCsv() const;

    /** Print the text rendering to stdout. */
    void print() const;

    /** Write the CSV rendering to `path`; fatal() on I/O error. */
    void writeCsv(const std::string& path) const;

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }

    /** Format helper: fixed-precision double. */
    static std::string fmt(double value, int precision = 2);
    /** Format helper: scientific notation. */
    static std::string sci(double value, int precision = 2);
    /**
     * Format helper: shortest %.12g rendering that is always a valid
     * JSON number (non-finite values become "0"). Shared by the CLI
     * and sweep JSON emitters.
     */
    static std::string num(double value);

  private:
    static std::string csvEscape(const std::string& cell);

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace dalorex

#endif // DALOREX_COMMON_TABLE_HH
