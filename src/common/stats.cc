#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dalorex
{

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        panic_if(x <= 0.0, "geomean requires positive values, got ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
giniCoefficient(std::vector<double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const auto n = static_cast<double>(xs.size());
    double cum_weighted = 0.0;
    double cum = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        cum_weighted += static_cast<double>(i + 1) * xs[i];
        cum += xs[i];
    }
    if (cum == 0.0)
        return 0.0;
    return (2.0 * cum_weighted) / (n * cum) - (n + 1.0) / n;
}

double
imbalanceFactor(const std::vector<double>& xs)
{
    if (xs.empty())
        return 1.0;
    const double m = mean(xs);
    if (m == 0.0)
        return 1.0;
    return *std::max_element(xs.begin(), xs.end()) / m;
}

Histogram::Histogram(std::size_t num_bins) : bins_(num_bins, 0)
{
    panic_if(num_bins == 0, "Histogram needs at least one bin");
}

void
Histogram::add(std::uint64_t value)
{
    if (value < bins_.size())
        ++bins_[value];
    else
        ++overflow_;
    ++total_;
}

std::uint64_t
Histogram::binCount(std::size_t bin) const
{
    panic_if(bin >= bins_.size(), "histogram bin ", bin, " out of range");
    return bins_[bin];
}

std::uint64_t
Histogram::percentile(double fraction) const
{
    panic_if(fraction < 0.0 || fraction > 1.0,
             "percentile fraction out of [0,1]: ", fraction);
    if (total_ == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(fraction * static_cast<double>(total_)));
    std::uint64_t seen = 0;
    for (std::size_t bin = 0; bin < bins_.size(); ++bin) {
        seen += bins_[bin];
        if (seen >= target)
            return bin;
    }
    return bins_.size(); // in the overflow bin
}

} // namespace dalorex
