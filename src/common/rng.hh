/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic component of the repository (RMAT generation, edge
 * weights, synthetic dataset construction) draws from this generator so
 * that simulations are bit-reproducible across runs and platforms given
 * the same seed. <random> distributions are avoided because their output
 * is implementation-defined.
 */

#ifndef DALOREX_COMMON_RNG_HH
#define DALOREX_COMMON_RNG_HH

#include <cstdint>

namespace dalorex
{

/**
 * xoshiro256** by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
 * Seeded through splitmix64 so that any 64-bit seed yields a well-mixed
 * state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the 4-word state.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next64()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). Requires bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection method: unbiased and cheap.
        std::uint64_t x = next64();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                x = next64();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in the inclusive range [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 53 random mantissa bits.
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace dalorex

#endif // DALOREX_COMMON_RNG_HH
