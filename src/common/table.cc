#include "common/table.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace dalorex
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(), "Table row has ",
             cells.size(), " cells, expected ", headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::toText() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << row[c]
                << std::string(widths[c] - row[c].size(), ' ');
            oss << (c + 1 < row.size() ? "  " : "");
        }
        oss << '\n';
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    oss << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto& row : rows_)
        emit_row(row);
    return oss.str();
}

std::string
Table::csvEscape(const std::string& cell)
{
    const bool needs_quote =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

std::string
Table::toCsv() const
{
    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << csvEscape(row[c]);
            if (c + 1 < row.size())
                oss << ',';
        }
        oss << '\n';
    };
    emit_row(headers_);
    for (const auto& row : rows_)
        emit_row(row);
    return oss.str();
}

void
Table::print() const
{
    const std::string text = toText();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
}

void
Table::writeCsv(const std::string& path) const
{
    std::ofstream out(path);
    fatal_if(!out, "cannot open CSV output file: ", path);
    out << toCsv();
    fatal_if(!out, "error writing CSV output file: ", path);
}

std::string
Table::fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
Table::sci(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
    return buf;
}

std::string
Table::num(double value)
{
    if (!std::isfinite(value))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

} // namespace dalorex
