/**
 * @file
 * Statistics helpers: scalar summaries, geometric means, load-imbalance
 * metrics and simple histograms.
 *
 * Hot-path counters live as plain struct members in their owning
 * components (e.g., sim::RunStats); this header provides the math used
 * when reducing them for reports.
 */

#ifndef DALOREX_COMMON_STATS_HH
#define DALOREX_COMMON_STATS_HH

#include <cstdint>
#include <vector>

namespace dalorex
{

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double>& xs);

/** Geometric mean; requires all values > 0. 0 for an empty vector. */
double geomean(const std::vector<double>& xs);

/** Population standard deviation. */
double stddev(const std::vector<double>& xs);

/**
 * Gini coefficient in [0, 1): 0 is perfect balance. Used to quantify
 * per-tile load imbalance of data distributions (Sec. III-A / V-A).
 */
double giniCoefficient(std::vector<double> xs);

/** max / mean: >= 1; the classic load-imbalance factor. */
double imbalanceFactor(const std::vector<double>& xs);

/**
 * Fixed-bin histogram over non-negative integers with a final overflow
 * bin; used for degree-distribution checks on generated graphs.
 */
class Histogram
{
  public:
    /** Bins [0, numBins); values >= numBins land in the overflow bin. */
    explicit Histogram(std::size_t num_bins);

    void add(std::uint64_t value);

    std::uint64_t binCount(std::size_t bin) const;
    std::uint64_t overflowCount() const { return overflow_; }
    std::uint64_t totalCount() const { return total_; }
    std::size_t numBins() const { return bins_.size(); }

    /** Smallest value v such that at least `fraction` of samples <= v. */
    std::uint64_t percentile(double fraction) const;

  private:
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace dalorex

#endif // DALOREX_COMMON_STATS_HH
