/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  - an internal invariant was violated: a simulator bug.
 *            Aborts (may dump core).
 * fatal()  - the simulation cannot continue due to a user error
 *            (bad configuration, invalid arguments). Exits cleanly.
 * warn()   - something is approximated or suspicious but survivable.
 * inform() - normal operating status for the user.
 */

#ifndef DALOREX_COMMON_LOGGING_HH
#define DALOREX_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace dalorex
{

/** Internal helpers; use the macros below instead. */
namespace log_detail
{

[[noreturn]] void panicImpl(const char* file, int line,
                            const std::string& msg);
[[noreturn]] void fatalImpl(const char* file, int line,
                            const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

/** Stream-compose a message from a variadic pack. */
template <typename... Args>
std::string
composeMessage(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace log_detail

/** Whether warn()/inform() output is emitted (tests silence it). */
void setLogQuiet(bool quiet);
bool logQuiet();

} // namespace dalorex

/** Report a simulator bug and abort. */
#define panic(...)                                                        \
    ::dalorex::log_detail::panicImpl(                                     \
        __FILE__, __LINE__,                                               \
        ::dalorex::log_detail::composeMessage(__VA_ARGS__))

/** Report an unrecoverable user error and exit(1). */
#define fatal(...)                                                        \
    ::dalorex::log_detail::fatalImpl(                                     \
        __FILE__, __LINE__,                                               \
        ::dalorex::log_detail::composeMessage(__VA_ARGS__))

/** Report a survivable anomaly. */
#define warn(...)                                                         \
    ::dalorex::log_detail::warnImpl(                                      \
        ::dalorex::log_detail::composeMessage(__VA_ARGS__))

/** Report normal operating status. */
#define inform(...)                                                       \
    ::dalorex::log_detail::informImpl(                                    \
        ::dalorex::log_detail::composeMessage(__VA_ARGS__))

/** panic() if the given invariant does not hold. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if ((cond))                                                       \
            panic(__VA_ARGS__);                                           \
    } while (0)

/** fatal() if the given user-facing condition holds. */
#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if ((cond))                                                       \
            fatal(__VA_ARGS__);                                           \
    } while (0)

#endif // DALOREX_COMMON_LOGGING_HH
