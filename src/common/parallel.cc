#include "common/parallel.hh"

#include <algorithm>

namespace dalorex
{

void
runIndexed(std::size_t n, unsigned threads,
           const std::function<void(std::size_t)>& job)
{
    const std::size_t workers =
        std::min<std::size_t>(std::max(1u, threads), n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            job(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    auto drain = [&] {
        for (std::size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1))
            job(i);
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w)
        pool.emplace_back(drain);
    drain(); // the calling thread is worker 0
    for (std::thread& t : pool)
        t.join();
}

unsigned
defaultWorkerThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

WorkerCrew::WorkerCrew(unsigned members)
    : members_(std::max(1u, members))
{
    threads_.reserve(members_ - 1);
    for (unsigned m = 1; m < members_; ++m)
        threads_.emplace_back([this, m] { workerLoop(m); });
}

WorkerCrew::~WorkerCrew()
{
    stop_.store(true, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_acq_rel);
    generation_.notify_all();
    for (std::thread& t : threads_)
        t.join();
}

void
WorkerCrew::runPhase(const std::function<void(unsigned)>& fn)
{
    if (members_ == 1) {
        fn(0);
        return;
    }
    phase_ = &fn;
    remaining_.store(members_, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_acq_rel);
    generation_.notify_all();

    fn(0); // the calling thread is member 0
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) > 1) {
        // Wait for the stragglers; the last one notifies.
        unsigned left = remaining_.load(std::memory_order_acquire);
        while (left != 0) {
            remaining_.wait(left, std::memory_order_acquire);
            left = remaining_.load(std::memory_order_acquire);
        }
    }
    phase_ = nullptr;
}

TreeBarrier::TreeBarrier(unsigned members)
    : members_(std::max(1u, members)), nodes_(members_)
{
}

void
TreeBarrier::waitFor(std::atomic<std::uint64_t>& flag,
                     std::uint64_t epoch)
{
    // Short spin first: barrier partners in a cycle loop usually
    // arrive within a handful of loads, and the spin touches only the
    // waited-on node's cache line.
    for (int spin = 0; spin < 256; ++spin) {
        if (flag.load(std::memory_order_acquire) >= epoch)
            return;
    }
    std::uint64_t seen = flag.load(std::memory_order_acquire);
    while (seen < epoch) {
        flag.wait(seen, std::memory_order_acquire);
        seen = flag.load(std::memory_order_acquire);
    }
}

void
TreeBarrier::sync(unsigned member, const SerialFn* serial)
{
    Node& me = nodes_[member];
    const std::uint64_t epoch = ++me.epoch;
    if (members_ == 1) {
        if (serial != nullptr && *serial)
            (*serial)();
        return;
    }

    // Gather: wait until every arrival-tree child's subtree reached
    // this epoch, then report our own subtree upward. The acquire
    // chain makes every descendant's pre-sync writes visible here.
    const unsigned first_child = member * arriveArity + 1;
    for (unsigned c = first_child;
         c < first_child + arriveArity && c < members_; ++c)
        waitFor(nodes_[c].arrived, epoch);
    if (member != 0) {
        me.arrived.store(epoch, std::memory_order_release);
        me.arrived.notify_one();
        waitFor(me.released, epoch);
    } else if (serial != nullptr && *serial) {
        // The root has seen every arrival: the whole crew is inside
        // the barrier and the serial section owns the world.
        (*serial)();
    }

    // Scatter: release our wakeup-tree children; each forwards the
    // epoch downward, forming a release chain that publishes the
    // serial section's writes to every member.
    const unsigned first_wake = member * wakeArity + 1;
    for (unsigned c = first_wake;
         c < first_wake + wakeArity && c < members_; ++c) {
        nodes_[c].released.store(epoch, std::memory_order_release);
        nodes_[c].released.notify_one();
    }
}

void
CentralBarrier::Completion::operator()() noexcept
{
    const SerialFn* fn = self->serial_;
    self->serial_ = nullptr;
    if (fn != nullptr && *fn)
        (*fn)();
}

CentralBarrier::CentralBarrier(unsigned members)
    : barrier_(static_cast<std::ptrdiff_t>(std::max(1u, members)),
               Completion{this})
{
}

void
CentralBarrier::sync(unsigned member, const SerialFn* serial)
{
    // Member 0 stores before arriving; the completion step follows
    // every arrival, so the store is visible there.
    if (member == 0)
        serial_ = serial;
    barrier_.arrive_and_wait();
}

std::unique_ptr<PhaseBarrier>
makePhaseBarrier(EngineBarrier kind, unsigned members)
{
    if (kind == EngineBarrier::central)
        return std::make_unique<CentralBarrier>(members);
    return std::make_unique<TreeBarrier>(members);
}

void
WorkerCrew::workerLoop(unsigned member)
{
    std::uint64_t seen = 0;
    for (;;) {
        generation_.wait(seen, std::memory_order_acquire);
        seen = generation_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_acquire))
            return;
        (*phase_)(member);
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1)
            remaining_.notify_all();
    }
}

DeadlineWatchdog::~DeadlineWatchdog()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

std::uint64_t
DeadlineWatchdog::arm(Clock::time_point when, std::atomic<bool>* flag)
{
    std::uint64_t token = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        token = nextToken_++;
        entries_[token] = Entry{when, flag};
        if (!thread_.joinable())
            thread_ = std::thread([this] { loop(); });
    }
    cv_.notify_all();
    return token;
}

void
DeadlineWatchdog::disarm(std::uint64_t token)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase(token);
    // No wake needed: the loop re-checks the earliest deadline after
    // every timed wait, and a stale early wake-up is harmless.
}

std::size_t
DeadlineWatchdog::armed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
DeadlineWatchdog::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (stop_)
            return;
        const Clock::time_point now = Clock::now();
        Clock::time_point earliest = Clock::time_point::max();
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (it->second.when <= now) {
                it->second.flag->store(true, std::memory_order_release);
                it = entries_.erase(it);
            } else {
                earliest = std::min(earliest, it->second.when);
                ++it;
            }
        }
        if (earliest == Clock::time_point::max())
            cv_.wait(lock);
        else
            cv_.wait_until(lock, earliest);
    }
}

DeadlineWatchdog&
processDeadlineWatchdog()
{
    static DeadlineWatchdog watchdog;
    return watchdog;
}

} // namespace dalorex
