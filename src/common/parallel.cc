#include "common/parallel.hh"

#include <algorithm>

namespace dalorex
{

void
runIndexed(std::size_t n, unsigned threads,
           const std::function<void(std::size_t)>& job)
{
    const std::size_t workers =
        std::min<std::size_t>(std::max(1u, threads), n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            job(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    auto drain = [&] {
        for (std::size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1))
            job(i);
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w)
        pool.emplace_back(drain);
    drain(); // the calling thread is worker 0
    for (std::thread& t : pool)
        t.join();
}

unsigned
defaultWorkerThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

WorkerCrew::WorkerCrew(unsigned members)
    : members_(std::max(1u, members))
{
    threads_.reserve(members_ - 1);
    for (unsigned m = 1; m < members_; ++m)
        threads_.emplace_back([this, m] { workerLoop(m); });
}

WorkerCrew::~WorkerCrew()
{
    stop_.store(true, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_acq_rel);
    generation_.notify_all();
    for (std::thread& t : threads_)
        t.join();
}

void
WorkerCrew::runPhase(const std::function<void(unsigned)>& fn)
{
    if (members_ == 1) {
        fn(0);
        return;
    }
    phase_ = &fn;
    remaining_.store(members_, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_acq_rel);
    generation_.notify_all();

    fn(0); // the calling thread is member 0
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) > 1) {
        // Wait for the stragglers; the last one notifies.
        unsigned left = remaining_.load(std::memory_order_acquire);
        while (left != 0) {
            remaining_.wait(left, std::memory_order_acquire);
            left = remaining_.load(std::memory_order_acquire);
        }
    }
    phase_ = nullptr;
}

void
WorkerCrew::workerLoop(unsigned member)
{
    std::uint64_t seen = 0;
    for (;;) {
        generation_.wait(seen, std::memory_order_acquire);
        seen = generation_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_acquire))
            return;
        (*phase_)(member);
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1)
            remaining_.notify_all();
    }
}

} // namespace dalorex
