/**
 * @file
 * Fundamental scalar types shared by every Dalorex subsystem.
 *
 * The paper models a 32-bit machine: flits, queue entries, memory words
 * and the PU ALU are all 32 bits wide ("A 32-bit Dalorex can process
 * graphs of up to 2^32 edges", Sec. III-E). All dataset indices therefore
 * fit in a Word.
 */

#ifndef DALOREX_COMMON_TYPES_HH
#define DALOREX_COMMON_TYPES_HH

#include <cstdint>

namespace dalorex
{

/** One machine word: the width of flits, queue entries and the PU ALU. */
using Word = std::uint32_t;

/** Simulation time in clock cycles (1 GHz in the paper's power model). */
using Cycle = std::uint64_t;

/** Linear tile identifier: y * gridWidth + x. */
using TileId = std::uint32_t;

/** Vertex identifier inside a graph (global index). */
using VertexId = std::uint32_t;

/** Edge identifier, i.e., a global index into the CSR edge arrays. */
using EdgeId = std::uint32_t;

/** Task identifier within a program (T1..T4 in Listing 1). */
using TaskId = std::uint8_t;

/** Logical network-channel identifier (CQ1, CQ2, ... in Listing 1). */
using ChannelId = std::uint8_t;

/** Number of bytes in one queue entry word / network flit. */
constexpr unsigned wordBytes = sizeof(Word);

/**
 * Cycle-stepping scan mode of the engine — a pure simulator execution
 * knob (never changes results). `full` walks every tile and router
 * each cycle (the reference oracle); `active` iterates only the
 * per-shard active worklists, maintained event-driven at the points
 * where activity is created. Stats and energy are byte-identical for
 * both modes; only the simulator's own wall work differs.
 */
enum class EngineScan : std::uint8_t
{
    full,
    active,
};

constexpr const char*
toString(EngineScan scan)
{
    return scan == EngineScan::full ? "full" : "active";
}

/**
 * Cycle-loop barrier implementation — a pure simulator execution knob
 * (never changes results). `tree` is the cache-friendly MCS-style
 * sense-reversing tree barrier (arrival fan-in + wakeup fan-out over
 * per-member cache lines); `central` keeps the centralized
 * std::barrier as a byte-identical reference. Stats and energy are
 * identical for both; only the engine's wall clock differs.
 */
enum class EngineBarrier : std::uint8_t
{
    tree,
    central,
};

constexpr const char*
toString(EngineBarrier barrier)
{
    return barrier == EngineBarrier::tree ? "tree" : "central";
}

/**
 * Why a Machine::run ended. Anything but `completed` means the run
 * unwound early through the cooperative RunControl path — the crew
 * exits at a cycle boundary with partial (but internally consistent)
 * stats instead of the process dying. `timeout` covers both the
 * wall-clock deadline watchdog and the hard cycle limit; `deadlock`
 * is the no-progress watchdog that used to panic.
 */
enum class RunStatus : std::uint8_t
{
    completed,
    timeout,
    cancelled,
    deadlock,
};

constexpr const char*
toString(RunStatus status)
{
    switch (status) {
    case RunStatus::timeout: return "timeout";
    case RunStatus::cancelled: return "cancelled";
    case RunStatus::deadlock: return "deadlock";
    case RunStatus::completed: break;
    }
    return "completed";
}

/** Sentinel for "no tile". */
constexpr TileId invalidTile = ~TileId(0);

/** Sentinel used by BFS/SSSP for unreached vertices. */
constexpr Word infDist = ~Word(0);

} // namespace dalorex

#endif // DALOREX_COMMON_TYPES_HH
