/**
 * @file
 * Small bit-manipulation helpers used across the simulator.
 */

#ifndef DALOREX_COMMON_BITS_HH
#define DALOREX_COMMON_BITS_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace dalorex
{

/** True iff x is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)); requires x > 0. */
constexpr unsigned
log2Floor(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** ceil(log2(x)); requires x > 0. log2Ceil(1) == 0. */
constexpr unsigned
log2Ceil(std::uint64_t x)
{
    return x <= 1 ? 0u : log2Floor(x - 1) + 1;
}

/** ceil(a / b) for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Index (from bit 0) of the most significant set bit; requires x != 0. */
inline unsigned
searchMsb(std::uint32_t x)
{
    panic_if(x == 0, "searchMsb on zero word");
    return 31u - static_cast<unsigned>(std::countl_zero(x));
}

/** Set bit `bit` in `word` (Listing 1's mask_in_bit). */
constexpr std::uint32_t
maskInBit(std::uint32_t word, unsigned bit)
{
    return word | (std::uint32_t(1) << bit);
}

/** Clear bit `bit` in `word` (Listing 1's mask_out_bit). */
constexpr std::uint32_t
maskOutBit(std::uint32_t word, unsigned bit)
{
    return word & ~(std::uint32_t(1) << bit);
}

/**
 * Intrusive bitmap worklist: the membership structure of the
 * engine's active-set scheduling (one bit per tile/router of a
 * shard's range). Adding is an O(1) idempotent bit-set; sweeping
 * walks the set bits in ascending index order — the prefetch
 * pattern of a full scan, minus the inactive members.
 */

/** Queue index `i` on the worklist (idempotent). */
inline void
worklistAdd(std::vector<std::uint64_t>& mask, std::size_t i)
{
    mask[i >> 6] |= std::uint64_t(1) << (i & 63);
}

/**
 * Visit every queued index in ascending order; `visit(i)` returns
 * whether the index stays queued (deferred removal). Words ahead of
 * the walk must not change mid-sweep — the engine guarantees this
 * because a member's visit never activates *other* members of the
 * same worklist (and cross-shard activity is staged to the serial
 * commit).
 */
template <typename VisitFn>
inline void
worklistSweep(std::vector<std::uint64_t>& mask, VisitFn&& visit)
{
    for (std::size_t w = 0; w < mask.size(); ++w) {
        std::uint64_t bits = mask[w];
        if (bits == 0)
            continue;
        std::uint64_t keep = bits;
        do {
            const unsigned b =
                static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            if (!visit((w << 6) + b))
                keep &= ~(std::uint64_t(1) << b);
        } while (bits != 0);
        mask[w] = keep;
    }
}

} // namespace dalorex

#endif // DALOREX_COMMON_BITS_HH
