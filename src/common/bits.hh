/**
 * @file
 * Small bit-manipulation helpers used across the simulator.
 */

#ifndef DALOREX_COMMON_BITS_HH
#define DALOREX_COMMON_BITS_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"

namespace dalorex
{

/** True iff x is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)); requires x > 0. */
constexpr unsigned
log2Floor(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** ceil(log2(x)); requires x > 0. log2Ceil(1) == 0. */
constexpr unsigned
log2Ceil(std::uint64_t x)
{
    return x <= 1 ? 0u : log2Floor(x - 1) + 1;
}

/** ceil(a / b) for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Index (from bit 0) of the most significant set bit; requires x != 0. */
inline unsigned
searchMsb(std::uint32_t x)
{
    panic_if(x == 0, "searchMsb on zero word");
    return 31u - static_cast<unsigned>(std::countl_zero(x));
}

/** Set bit `bit` in `word` (Listing 1's mask_in_bit). */
constexpr std::uint32_t
maskInBit(std::uint32_t word, unsigned bit)
{
    return word | (std::uint32_t(1) << bit);
}

/** Clear bit `bit` in `word` (Listing 1's mask_out_bit). */
constexpr std::uint32_t
maskOutBit(std::uint32_t word, unsigned bit)
{
    return word & ~(std::uint32_t(1) << bit);
}

} // namespace dalorex

#endif // DALOREX_COMMON_BITS_HH
