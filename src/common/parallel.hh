/**
 * @file
 * Shared worker-thread machinery: a one-shot indexed pool for
 * embarrassingly parallel index spaces (the sweep orchestrator) and a
 * persistent phase crew for the cycle engine.
 *
 * Both live below src/sim and src/sweep so the simulation engine and
 * the sweep layer draw workers from one abstraction — `--threads N`
 * on a sweep splits into `--engine-threads` per engine times
 * N / engine-threads sweep workers, all built on this file.
 */

#ifndef DALOREX_COMMON_PARALLEL_HH
#define DALOREX_COMMON_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace dalorex
{

/**
 * Invoke `job(i)` for every i in [0, n) on up to `threads` workers.
 * Workers pull indices from a shared atomic counter and each invokes
 * the job on its own stack; results written into pre-sized slot `i`
 * are identical regardless of the thread count or scheduling order.
 * threads <= 1 (or n <= 1) runs inline on the calling thread. Blocks
 * until all jobs finish.
 */
void runIndexed(std::size_t n, unsigned threads,
                const std::function<void(std::size_t)>& job);

/** The host core count (>= 1): the default worker-pool size. */
unsigned defaultWorkerThreads();

/**
 * A persistent crew of workers executing one phase at a time.
 *
 * The owner repeatedly calls runPhase(fn); every member — the calling
 * thread is member 0 — runs fn(memberIndex) exactly once, and
 * runPhase returns after the last member finishes. Workers block on
 * C++20 atomic waits between phases, so an idle crew costs nothing
 * but memory.
 *
 * The cycle engine uses one crew per Machine::run: each member owns
 * one tile/router shard, and the per-cycle compute phases run as crew
 * phases with the serial commit in between on the caller.
 */
class WorkerCrew
{
  public:
    /** A crew of `members` (1 = no threads; runPhase runs inline). */
    explicit WorkerCrew(unsigned members);
    ~WorkerCrew();

    WorkerCrew(const WorkerCrew&) = delete;
    WorkerCrew& operator=(const WorkerCrew&) = delete;

    unsigned members() const { return members_; }

    /** Run fn(member) on every member; blocks until all finish. */
    void runPhase(const std::function<void(unsigned)>& fn);

  private:
    void workerLoop(unsigned member);

    unsigned members_ = 1;
    std::vector<std::thread> threads_;
    const std::function<void(unsigned)>* phase_ = nullptr;
    std::atomic<std::uint64_t> generation_{0};
    std::atomic<unsigned> remaining_{0};
    std::atomic<bool> stop_{false};
};

} // namespace dalorex

#endif // DALOREX_COMMON_PARALLEL_HH
