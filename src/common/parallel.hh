/**
 * @file
 * Shared worker-thread machinery: a one-shot indexed pool for
 * embarrassingly parallel index spaces (the sweep orchestrator) and a
 * persistent phase crew for the cycle engine.
 *
 * Both live below src/sim and src/sweep so the simulation engine and
 * the sweep layer draw workers from one abstraction — `--threads N`
 * on a sweep splits into `--engine-threads` per engine times
 * N / engine-threads sweep workers, all built on this file.
 */

#ifndef DALOREX_COMMON_PARALLEL_HH
#define DALOREX_COMMON_PARALLEL_HH

#include <atomic>
#include <barrier>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace dalorex
{

/**
 * Invoke `job(i)` for every i in [0, n) on up to `threads` workers.
 * Workers pull indices from a shared atomic counter and each invokes
 * the job on its own stack; results written into pre-sized slot `i`
 * are identical regardless of the thread count or scheduling order.
 * threads <= 1 (or n <= 1) runs inline on the calling thread. Blocks
 * until all jobs finish.
 */
void runIndexed(std::size_t n, unsigned threads,
                const std::function<void(std::size_t)>& job);

/** The host core count (>= 1): the default worker-pool size. */
unsigned defaultWorkerThreads();

/**
 * A persistent crew of workers executing one phase at a time.
 *
 * The owner repeatedly calls runPhase(fn); every member — the calling
 * thread is member 0 — runs fn(memberIndex) exactly once, and
 * runPhase returns after the last member finishes. Workers block on
 * C++20 atomic waits between phases, so an idle crew costs nothing
 * but memory.
 *
 * The cycle engine uses one crew per Machine::run: each member owns
 * one tile/router shard, and the per-cycle compute phases run as crew
 * phases with the serial commit in between on the caller.
 */
class WorkerCrew
{
  public:
    /** A crew of `members` (1 = no threads; runPhase runs inline). */
    explicit WorkerCrew(unsigned members);
    ~WorkerCrew();

    WorkerCrew(const WorkerCrew&) = delete;
    WorkerCrew& operator=(const WorkerCrew&) = delete;

    unsigned members() const { return members_; }

    /** Run fn(member) on every member; blocks until all finish. */
    void runPhase(const std::function<void(unsigned)>& fn);

  private:
    void workerLoop(unsigned member);

    unsigned members_ = 1;
    std::vector<std::thread> threads_;
    const std::function<void(unsigned)>* phase_ = nullptr;
    std::atomic<std::uint64_t> generation_{0};
    std::atomic<unsigned> remaining_{0};
    std::atomic<bool> stop_{false};
};

/**
 * A reusable rendezvous for a fixed crew of members running the same
 * phase sequence in lockstep (the cycle engine's SPMD loop).
 *
 * sync(member) blocks until every member has arrived, then releases
 * them all; sync(member, serial) additionally runs `*serial` exactly
 * once between the last arrival and the first release — the engine's
 * per-cycle serial section (delta merge, idle/termination decision)
 * rides inside the barrier instead of costing a second rendezvous.
 *
 * Contract: all members pass the same `serial` pointer at a given
 * sync point (the call sites are lockstep by construction). Memory
 * ordering is full-barrier semantics: every member's pre-sync writes
 * happen-before the serial function, whose writes happen-before every
 * member's return.
 */
class PhaseBarrier
{
  public:
    using SerialFn = std::function<void()>;

    virtual ~PhaseBarrier() = default;

    /** Arrive and wait; the completing member runs `*serial` (when
     *  non-null and non-empty) before anyone is released. */
    virtual void sync(unsigned member, const SerialFn* serial) = 0;

    void sync(unsigned member) { sync(member, nullptr); }
};

/**
 * MCS-style sense-reversing tree barrier: members gather up a 4-ary
 * arrival tree and are released down a binary wakeup tree, every
 * member spinning only on its own cache-line-aligned node (then
 * parking on a C++20 atomic wait). The serial section runs on the
 * root — member 0, the engine's calling thread — so per-cycle serial
 * work stays on one deterministic thread. Epoch counters replace
 * boolean sense flags: a monotonically increasing generation needs no
 * reset phase and cannot alias across back-to-back syncs.
 */
class TreeBarrier final : public PhaseBarrier
{
  public:
    explicit TreeBarrier(unsigned members);

    void sync(unsigned member, const SerialFn* serial) override;

    static constexpr unsigned arriveArity = 4;
    static constexpr unsigned wakeArity = 2;

  private:
    /** One member's flags, alone on their cache line so arrival and
     *  release traffic never false-shares between members. */
    struct alignas(64) Node
    {
        std::atomic<std::uint64_t> arrived{0};
        std::atomic<std::uint64_t> released{0};
        /** Member-local sync generation (only its owner touches it). */
        std::uint64_t epoch = 0;
    };

    /** Spin briefly on `flag >= epoch`, then park on an atomic wait. */
    static void waitFor(std::atomic<std::uint64_t>& flag,
                        std::uint64_t epoch);

    unsigned members_;
    std::vector<Node> nodes_;
};

/**
 * Centralized reference barrier on std::barrier. Exists as the
 * byte-identical baseline the tree barrier is benchmarked and
 * determinism-tested against; the serial section runs as the
 * std::barrier completion step (on an unspecified member's thread).
 */
class CentralBarrier final : public PhaseBarrier
{
  public:
    explicit CentralBarrier(unsigned members);

    void sync(unsigned member, const SerialFn* serial) override;

  private:
    struct Completion
    {
        CentralBarrier* self;
        void operator()() noexcept;
    };

    /** The current sync point's serial section; member 0 stores it
     *  before arriving, so its write happens-before the completion
     *  step (which follows every arrival). */
    const SerialFn* serial_ = nullptr;
    std::barrier<Completion> barrier_;
};

/** Build the configured barrier flavor for `members` members. */
std::unique_ptr<PhaseBarrier> makePhaseBarrier(EngineBarrier kind,
                                               unsigned members);

/**
 * A monotonic-clock deadline watchdog: arm() registers an atomic flag
 * to be set once std::chrono::steady_clock passes `when`; disarm()
 * withdraws it (the common case — the run finished in time). One
 * background thread, started lazily on the first arm, sleeps until
 * the earliest armed deadline, so an idle watchdog costs nothing and
 * a process full of deadline-carrying runs costs one thread total.
 *
 * The flag outlives the engine poll site that reads it: the engine's
 * serial tail checks it once per cycle, so expiry unwinds the run
 * within one simulated cycle of wall work. Callers must disarm before
 * destroying the flag.
 */
class DeadlineWatchdog
{
  public:
    using Clock = std::chrono::steady_clock;

    DeadlineWatchdog() = default;
    ~DeadlineWatchdog();

    DeadlineWatchdog(const DeadlineWatchdog&) = delete;
    DeadlineWatchdog& operator=(const DeadlineWatchdog&) = delete;

    /** Set `*flag` when the clock passes `when`; returns a token for
     *  disarm(). `flag` must stay valid until disarmed or fired. */
    std::uint64_t arm(Clock::time_point when, std::atomic<bool>* flag);

    /** Withdraw an armed deadline (no-op if it already fired). */
    void disarm(std::uint64_t token);

    /** Deadlines currently armed (test introspection). */
    std::size_t armed() const;

  private:
    struct Entry
    {
        Clock::time_point when;
        std::atomic<bool>* flag = nullptr;
    };

    void loop();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<std::uint64_t, Entry> entries_;
    std::uint64_t nextToken_ = 1;
    bool stop_ = false;
    std::thread thread_;
};

/**
 * The process-wide watchdog every deadline-carrying run shares
 * (`--deadline-ms` on the CLI, per-request `deadline_ms` in serve,
 * per-row budgets on sweep). One thread for the whole process.
 */
DeadlineWatchdog& processDeadlineWatchdog();

} // namespace dalorex

#endif // DALOREX_COMMON_PARALLEL_HH
